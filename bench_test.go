// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section. Every benchmark exercises the code path that
// regenerates the corresponding result; `cmd/experiments` runs the same
// measurements at the full PolyBench problem sizes and prints the rows of
// the figure (see EXPERIMENTS.md for the mapping and the recorded results).
//
// The benchmarks use small problem instances so that the whole suite
// finishes in a few minutes; the analytical model's runtime is problem-size
// independent for the affine kernels, so the relative behaviour matches the
// full-size runs.
package haystack_test

import (
	"testing"

	"haystack"
	"haystack/internal/cachesim"
	"haystack/internal/core"
	"haystack/internal/explore"
	"haystack/internal/polybench"
	"haystack/internal/reusedist"
	"haystack/internal/scop"
	"haystack/internal/tiling"
)

func smallGemm(n int64) *scop.Program {
	p := scop.NewProgram("gemm-bench")
	a := p.NewArray("A", scop.ElemFloat64, n, n)
	b := p.NewArray("B", scop.ElemFloat64, n, n)
	c := p.NewArray("C", scop.ElemFloat64, n, n)
	i, j, kk := scop.V("i"), scop.V("j"), scop.V("k")
	p.Add(scop.For(i, scop.C(0), scop.C(n),
		scop.For(j, scop.C(0), scop.C(n),
			scop.For(kk, scop.C(0), scop.C(n),
				scop.Stmt("S0",
					scop.Read(a, scop.X(i), scop.X(kk)),
					scop.Read(b, scop.X(kk), scop.X(j)),
					scop.Read(c, scop.X(i), scop.X(j)),
					scop.Write(c, scop.X(i), scop.X(j)))))))
	return p
}

func smallStencil(n int64) *scop.Program {
	p := scop.NewProgram("stencil-bench")
	a := p.NewArray("A", scop.ElemFloat64, n, n)
	b := p.NewArray("B", scop.ElemFloat64, n, n)
	i, j := scop.V("i"), scop.V("j")
	p.Add(scop.For(i, scop.C(1), scop.C(n-1),
		scop.For(j, scop.C(1), scop.C(n-1),
			scop.Stmt("S0",
				scop.Read(a, scop.X(i), scop.X(j)),
				scop.Read(a, scop.X(i).Minus(scop.C(1)), scop.X(j)),
				scop.Read(a, scop.X(i).Plus(scop.C(1)), scop.X(j)),
				scop.Read(a, scop.X(i), scop.X(j).Minus(scop.C(1))),
				scop.Read(a, scop.X(i), scop.X(j).Plus(scop.C(1))),
				scop.Write(b, scop.X(i), scop.X(j))))))
	return p
}

func smallTrisolv(n int64) *scop.Program {
	p := scop.NewProgram("trisolv-bench")
	l := p.NewArray("L", scop.ElemFloat64, n, n)
	xv := p.NewArray("x", scop.ElemFloat64, n)
	b := p.NewArray("b", scop.ElemFloat64, n)
	i, j := scop.V("i"), scop.V("j")
	p.Add(scop.For(i, scop.C(0), scop.C(n),
		scop.Stmt("S0", scop.Read(b, scop.X(i)), scop.Write(xv, scop.X(i))),
		scop.For(j, scop.C(0), scop.X(i),
			scop.Stmt("S1", scop.Read(l, scop.X(i), scop.X(j)), scop.Read(xv, scop.X(j)),
				scop.Read(xv, scop.X(i)), scop.Write(xv, scop.X(i))))))
	return p
}

var benchConfig = haystack.Config{LineSize: 64, CacheSizes: []int64{8 * 1024, 64 * 1024}}

func analyzeOnce(b *testing.B, prog *scop.Program, cfg haystack.Config, opts haystack.Options) *haystack.Result {
	b.Helper()
	opts.TraceFallback = false
	res, err := core.Analyze(prog, cfg, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig1_ModelGemm measures the analytical model on gemm; together
// with BenchmarkFig1_SimulationGemm it regenerates the scaling comparison of
// Figure 1 (the model time stays flat while the simulation time grows with
// the problem size — run the benchmark with different -gemm-n via
// cmd/experiments fig1 for the full sweep).
func BenchmarkFig1_ModelGemm(b *testing.B) {
	prog := smallGemm(10)
	for i := 0; i < b.N; i++ {
		analyzeOnce(b, prog, benchConfig, haystack.DefaultOptions())
	}
}

func BenchmarkFig1_SimulationGemm(b *testing.B) {
	prog := smallGemm(64)
	layout := scop.NewLayout(prog, scop.LayoutNatural, 64)
	cp, err := scop.Compile(prog, layout)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reusedist.ProfileProgram(cp, 64)
	}
}

// BenchmarkFig9_ModelAccuracy regenerates one accuracy data point of
// Figure 9: the model prediction plus the detailed ("measured") simulation.
func BenchmarkFig9_ModelAccuracy(b *testing.B) {
	prog := smallStencil(24)
	simCfg := haystack.SimConfig{LineSize: 64, Levels: []haystack.SimLevel{
		{Name: "L1", SizeBytes: 8 * 1024, Ways: 8, Policy: haystack.PLRU, NextLinePrefetch: true},
	}}
	for i := 0; i < b.N; i++ {
		analyzeOnce(b, prog, benchConfig, haystack.DefaultOptions())
		if _, err := core.DetailedSimulation(prog, simCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10_DineroSimulation regenerates a Figure 10 data point: the
// trace-driven simulation with full associativity and with 8-way
// associativity.
func BenchmarkFig10_DineroSimulation(b *testing.B) {
	prog := smallStencil(64)
	layout := scop.NewLayout(prog, scop.LayoutNatural, 64)
	cp, err := scop.Compile(prog, layout)
	if err != nil {
		b.Fatal(err)
	}
	fullCfg := haystack.SimConfig{LineSize: 64, Levels: []haystack.SimLevel{
		{Name: "L1", SizeBytes: 8 * 1024, Ways: 0, Policy: haystack.LRU}}}
	assocCfg := haystack.SimConfig{LineSize: 64, Levels: []haystack.SimLevel{
		{Name: "L1", SizeBytes: 8 * 1024, Ways: 8, Policy: haystack.LRU}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulateCompiled(cp, fullCfg); err != nil {
			b.Fatal(err)
		}
		if _, err := simulateCompiled(cp, assocCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func simulateCompiled(cp *scop.CompiledProgram, cfg haystack.SimConfig) (haystack.SimResult, error) {
	return cachesim.Simulate(cp, cfg)
}

// BenchmarkFig11_TimeSplit measures the two model phases (stack distances
// and capacity counting) whose split Figure 11 reports; the per-phase times
// are available in Result.Stats.
func BenchmarkFig11_TimeSplit(b *testing.B) {
	prog := smallTrisolv(16)
	for i := 0; i < b.N; i++ {
		res := analyzeOnce(b, prog, benchConfig, haystack.DefaultOptions())
		if res.Stats.StackDistanceTime <= 0 || res.Stats.CountedPieces == 0 {
			b.Fatal("phase statistics missing")
		}
	}
}

// BenchmarkFig12_ProblemSizes runs the model on two problem sizes of the
// same kernel; Figure 12 reports that the model time is largely problem-size
// independent.
func BenchmarkFig12_ProblemSizes(b *testing.B) {
	small := smallGemm(8)
	large := smallGemm(16)
	for i := 0; i < b.N; i++ {
		analyzeOnce(b, small, benchConfig, haystack.DefaultOptions())
		analyzeOnce(b, large, benchConfig, haystack.DefaultOptions())
	}
}

// BenchmarkFig13_CacheLevels models one, two, and three cache levels;
// Figure 13 reports the marginal cost of additional levels.
func BenchmarkFig13_CacheLevels(b *testing.B) {
	prog := smallStencil(24)
	cfgs := []haystack.Config{
		{LineSize: 64, CacheSizes: []int64{8 * 1024}},
		{LineSize: 64, CacheSizes: []int64{8 * 1024, 64 * 1024}},
		{LineSize: 64, CacheSizes: []int64{8 * 1024, 64 * 1024, 512 * 1024}},
	}
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			analyzeOnce(b, prog, cfg, haystack.DefaultOptions())
		}
	}
}

// BenchmarkFig14_* regenerate the ablation of Figure 14: the model with all
// optimizations, without the floor eliminations, and without partial
// enumeration.
func BenchmarkFig14_AllOptimizations(b *testing.B) {
	prog := smallTrisolv(14)
	for i := 0; i < b.N; i++ {
		analyzeOnce(b, prog, benchConfig, haystack.Options{Equalization: true, Rasterization: true, PartialEnumeration: true})
	}
}

func BenchmarkFig14_NoFloorElimination(b *testing.B) {
	prog := smallTrisolv(14)
	for i := 0; i < b.N; i++ {
		analyzeOnce(b, prog, benchConfig, haystack.Options{PartialEnumeration: true})
	}
}

func BenchmarkFig14_FullEnumeration(b *testing.B) {
	prog := smallTrisolv(14)
	for i := 0; i < b.N; i++ {
		analyzeOnce(b, prog, benchConfig, haystack.Options{Equalization: true, Rasterization: true})
	}
}

// BenchmarkFig15_ModelVsSimulation pairs the model with the trace-driven
// simulator on the same kernel, the comparison of Figure 15b (and, scaled by
// the number of cache sets, the estimate of Figure 15a).
func BenchmarkFig15_ModelVsSimulation(b *testing.B) {
	prog := smallStencil(24)
	layout := scop.NewLayout(prog, scop.LayoutNatural, 64)
	cp, err := scop.Compile(prog, layout)
	if err != nil {
		b.Fatal(err)
	}
	simCfg := haystack.SimConfig{LineSize: 64, Levels: []haystack.SimLevel{
		{Name: "L1", SizeBytes: 8 * 1024, Ways: 8, Policy: haystack.PLRU}}}
	for i := 0; i < b.N; i++ {
		analyzeOnce(b, prog, benchConfig, haystack.DefaultOptions())
		if _, err := simulateCompiled(cp, simCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16_TiledKernel analyzes a rectangularly tiled kernel (tile
// size 16), the configuration of Figure 16. Tiling doubles the loop depth
// and, for some kernels, produces previous-access relations outside the
// exactly-supported quasi-affine fragment of this implementation; the
// model's hybrid fallback (exact trace profiling) is therefore left enabled
// here, exactly as a user would run it, and the benchmark measures the
// end-to-end cost including that fallback (see EXPERIMENTS.md).
func BenchmarkFig16_TiledKernel(b *testing.B) {
	prog := smallStencil(24)
	tiled, ok := tiling.Tile(prog, 16)
	if !ok {
		b.Fatal("stencil should have a rectangular tiling")
	}
	opts := haystack.DefaultOptions()
	opts.TraceFallback = true
	for i := 0; i < b.N; i++ {
		res, err := core.Analyze(tiled, haystack.Config{LineSize: 64, CacheSizes: []int64{8 * 1024}}, opts)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkTable1_NonAffineClassification exercises the classification of
// non-affine stack distance polynomials reported in Table 1.
func BenchmarkTable1_NonAffineClassification(b *testing.B) {
	prog := smallTrisolv(16)
	for i := 0; i < b.N; i++ {
		res := analyzeOnce(b, prog, benchConfig, haystack.DefaultOptions())
		_ = res.Stats.NonAffineByAffineDims
	}
}

// BenchmarkSweep_* measure the design-space exploration win of the
// two-phase API on a grid of one kernel × four cache hierarchies: the
// shared-distance sweep (internal/explore) computes the stack distance
// model once and only pays the counting phase per hierarchy, while the
// naive sweep repeats the full Analyze — and therefore the distance phase —
// for every grid point. The shared sweep must win by roughly the ratio of
// distance-phase to counting-phase cost.
var sweepHierarchies = []haystack.Config{
	{LineSize: 64, CacheSizes: []int64{1 * 1024}},
	{LineSize: 64, CacheSizes: []int64{8 * 1024}},
	{LineSize: 64, CacheSizes: []int64{64 * 1024}},
	{LineSize: 64, CacheSizes: []int64{8 * 1024, 64 * 1024, 512 * 1024}},
}

func sweepAnalysisOptions() haystack.Options {
	opts := haystack.DefaultOptions()
	opts.Parallelism = 1
	opts.TraceFallback = false
	return opts
}

func BenchmarkSweep_SharedDistances(b *testing.B) {
	grid := explore.Grid{
		Kernels:     []explore.Kernel{{Name: "gemm", Program: smallGemm(8)}},
		Hierarchies: sweepHierarchies,
	}
	opts := explore.Options{Analysis: sweepAnalysisOptions(), Parallelism: 1}
	for i := 0; i < b.N; i++ {
		res, err := explore.Sweep(grid, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.DistanceComputations != 1 || res.Stats.Evaluations != len(sweepHierarchies) {
			b.Fatalf("unexpected sweep shape: %+v", res.Stats)
		}
	}
}

func BenchmarkSweep_NaiveAnalyze(b *testing.B) {
	prog := smallGemm(8)
	opts := sweepAnalysisOptions()
	for i := 0; i < b.N; i++ {
		for _, cfg := range sweepHierarchies {
			analyzeOnce(b, prog, cfg, opts)
		}
	}
}

// BenchmarkTiledSymbolic_Gemm2D runs the full symbolic distance phase on the
// PolyBench gemm kernel at SMALL size, rectangularly tiled with tile size 16
// (the i/j band tiles; the k loop stays a point loop because the nest is
// imperfect). This is the workload the coalescing layer of
// internal/presburger exists for: without coalescing the basic-map unions
// grow combinatorially through the E/N/B/F compositions and the distance
// phase does not terminate in reasonable time (>35 minutes on the reference
// box, versus seconds with coalescing). The benchmark reports the peak
// basic-map count at the composition frontiers and the total coalescing
// hits alongside ns/op, so both the outcome and the mechanism are tracked.
func BenchmarkTiledSymbolic_Gemm2D(b *testing.B) {
	if testing.Short() {
		b.Skip("tiled symbolic distance phase takes tens of seconds per op")
	}
	k, ok := polybench.ByName("gemm")
	if !ok {
		b.Fatal("gemm kernel missing")
	}
	tiled, didTile := tiling.Tile(k.Build(polybench.Small), 16)
	if !didTile {
		b.Fatal("gemm should have a rectangular tiling")
	}
	opts := haystack.DefaultOptions()
	opts.TraceFallback = false
	opts.Parallelism = 1
	var last *core.DistanceModel
	for i := 0; i < b.N; i++ {
		dm, err := core.ComputeDistances(tiled, 64, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = dm
	}
	b.StopTimer()
	res, err := last.CountMisses(haystack.Config{LineSize: 64, CacheSizes: []int64{32 * 1024}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Stats.PeakBasicMaps), "peak-basic-maps")
	b.ReportMetric(float64(res.Stats.CoalesceDedup+res.Stats.CoalesceSubsumed+res.Stats.CoalesceAdjacent+res.Stats.CoalesceRedundantCons), "coalesce-hits")
}

// BenchmarkUntiledSymbolic_Gemm is the untiled baseline of
// BenchmarkTiledSymbolic_Gemm2D: the same kernel and size without tiling.
// The tiled/untiled ns/op ratio is the cost of the deeper nest, which
// coalescing keeps within a small constant factor instead of letting it
// diverge.
func BenchmarkUntiledSymbolic_Gemm(b *testing.B) {
	k, ok := polybench.ByName("gemm")
	if !ok {
		b.Fatal("gemm kernel missing")
	}
	prog := k.Build(polybench.Small)
	opts := haystack.DefaultOptions()
	opts.TraceFallback = false
	opts.Parallelism = 1
	var last *core.DistanceModel
	for i := 0; i < b.N; i++ {
		dm, err := core.ComputeDistances(prog, 64, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = dm
	}
	b.StopTimer()
	res, err := last.CountMisses(haystack.Config{LineSize: 64, CacheSizes: []int64{32 * 1024}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(res.Stats.PeakBasicMaps), "peak-basic-maps")
}

// Substrate micro-benchmarks: the trace generator and the simulator, whose
// throughput bounds every trace-driven comparison.
func BenchmarkSubstrate_TraceGeneration(b *testing.B) {
	prog := smallGemm(64)
	layout := scop.NewLayout(prog, scop.LayoutNatural, 64)
	cp, err := scop.Compile(prog, layout)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		total += cp.CountAccesses()
	}
	_ = total
}

func BenchmarkSubstrate_ReuseDistanceProfiler(b *testing.B) {
	prog := smallGemm(48)
	layout := scop.NewLayout(prog, scop.LayoutNatural, 64)
	cp, err := scop.Compile(prog, layout)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reusedist.ProfileProgram(cp, 64)
	}
}
