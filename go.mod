module haystack

go 1.24
