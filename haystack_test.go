package haystack_test

import (
	"testing"

	"haystack"
)

// TestPublicAPIQuickstart exercises the public API end to end on the paper's
// worked example and checks the numbers derived in section 3 of the paper.
func TestPublicAPIQuickstart(t *testing.T) {
	p := haystack.NewProgram("example")
	m := p.NewArray("M", haystack.ElemFloat64, 4)
	i, j := haystack.V("i"), haystack.V("j")
	p.Add(
		haystack.For(i, haystack.C(0), haystack.C(4),
			haystack.Stmt("S0", haystack.Write(m, haystack.X(i)))),
		haystack.For(j, haystack.C(0), haystack.C(4),
			haystack.Stmt("S1", haystack.Read(m, haystack.C(3).Minus(haystack.X(j))))),
	)
	cfg := haystack.Config{LineSize: 8, CacheSizes: []int64{16}}
	res, err := haystack.Analyze(p, cfg, haystack.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAccesses != 8 || res.CompulsoryMisses != 4 || res.Levels[0].CapacityMisses != 2 {
		t.Fatalf("unexpected result: %+v", res)
	}
	ref, err := haystack.SimulateReference(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.TotalMisses[0] != res.Levels[0].TotalMisses {
		t.Fatalf("model (%d) and reference (%d) disagree", res.Levels[0].TotalMisses, ref.TotalMisses[0])
	}
}

func TestPublicAPISimulator(t *testing.T) {
	k, ok := haystack.PolyBenchByName("gemm")
	if !ok {
		t.Fatal("gemm missing from the PolyBench registry")
	}
	prog := k.Build(haystack.Mini)
	res, err := haystack.Simulate(prog, haystack.SimConfig{
		LineSize: 64,
		Levels: []haystack.SimLevel{
			{Name: "L1", SizeBytes: 32 * 1024, Ways: 8, Policy: haystack.PLRU},
			{Name: "L2", SizeBytes: 1024 * 1024, Ways: 16, Policy: haystack.LRU},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAccesses == 0 || res.Levels[0].Hits+res.Levels[0].Misses != res.Levels[0].Accesses {
		t.Fatalf("inconsistent simulation result: %+v", res)
	}
}

func TestPolyBenchRegistryExposed(t *testing.T) {
	if len(haystack.PolyBenchKernels()) != 30 {
		t.Fatalf("expected 30 kernels, got %d", len(haystack.PolyBenchKernels()))
	}
}
