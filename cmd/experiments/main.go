// Command experiments regenerates the tables and figures of the paper's
// evaluation section. Every figure/table has a subcommand that prints the
// corresponding rows or series as an aligned text table (add -csv for CSV
// output suitable for plotting).
//
//	experiments fig1    scaling of the model vs simulation over problem sizes
//	experiments fig9    model accuracy vs the detailed ("measured") simulation
//	experiments fig10   Dinero-style simulation accuracy vs the same reference
//	experiments fig11   model execution time split and number of pieces
//	experiments fig12   model execution time for MEDIUM/LARGE/EXTRALARGE
//	experiments fig13   model execution time for 1, 2, and 3 cache levels
//	experiments fig14   speedup of equalization, rasterization, partial enumeration
//	experiments fig15a  estimated comparison against a per-set (PolyCache-style) model
//	experiments fig15b  speedup of the model over trace-driven simulation
//	experiments fig16   model execution time for tiled kernels (tile size 16)
//	experiments table1  non-affine stack distance polynomials by affine dimensions
//
// The defaults use a subset of kernels and the SMALL problem size so that a
// run completes in minutes; -kernels all -size LARGE reproduces the paper's
// configuration (see EXPERIMENTS.md for the expected runtimes).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"haystack/internal/cachesim"
	"haystack/internal/core"
	"haystack/internal/polybench"
	"haystack/internal/report"
	"haystack/internal/reusedist"
	"haystack/internal/scop"
	"haystack/internal/tiling"
)

// options shared by all experiments.
type options struct {
	kernels []polybench.Kernel
	size    polybench.Size
	csv     bool
	line    int64
	l1, l2  int64
	l3      int64
	sets    int64
	par     int
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	kernels := fs.String("kernels", "gemm,atax,bicg,mvt,gesummv,trisolv,jacobi-1d", "comma separated kernel names or 'all'")
	size := fs.String("size", "SMALL", "PolyBench problem size")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	line := fs.Int64("line", 64, "cache line size in bytes")
	l1 := fs.Int64("l1", 32*1024, "L1 capacity in bytes")
	l2 := fs.Int64("l2", 1024*1024, "L2 capacity in bytes")
	l3 := fs.Int64("l3", 25344*1024, "L3 capacity in bytes (fig13)")
	sets := fs.Int64("sets", 64, "number of cache sets assumed for the per-set model estimate (fig15a)")
	parallelism := fs.Int("parallelism", 0, "worker goroutines for the analysis (stack distances and capacity miss counting; 0 = all cores)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		log.Fatal(err)
	}
	opt := options{csv: *csv, line: *line, l1: *l1, l2: *l2, l3: *l3, sets: *sets, par: *parallelism}
	var err error
	opt.size, err = polybench.ParseSize(*size)
	if err != nil {
		log.Fatal(err)
	}
	opt.kernels, err = selectKernels(*kernels)
	if err != nil {
		log.Fatal(err)
	}

	switch cmd {
	case "fig1":
		fig1(opt)
	case "fig9":
		fig9(opt)
	case "fig10":
		fig10(opt)
	case "fig11":
		fig11(opt)
	case "fig12":
		fig12(opt)
	case "fig13":
		fig13(opt)
	case "fig14":
		fig14(opt)
	case "fig15a":
		fig15a(opt)
	case "fig15b":
		fig15b(opt)
	case "fig16":
		fig16(opt)
	case "table1":
		table1(opt)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments <fig1|fig9|fig10|fig11|fig12|fig13|fig14|fig15a|fig15b|fig16|table1> [flags]")
}

func selectKernels(spec string) ([]polybench.Kernel, error) {
	if spec == "all" {
		return polybench.Kernels(), nil
	}
	var out []polybench.Kernel
	for _, name := range strings.Split(spec, ",") {
		k, ok := polybench.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q", name)
		}
		out = append(out, k)
	}
	return out, nil
}

func emit(opt options, t *report.Table) {
	if opt.csv {
		t.WriteCSV(os.Stdout)
	} else {
		t.Write(os.Stdout)
		fmt.Println()
	}
}

func modelConfig(opt options) core.Config {
	return core.Config{LineSize: opt.line, CacheSizes: []int64{opt.l1, opt.l2}}
}

// measuredConfig is the hardware stand-in: set associative caches with
// tree-PLRU replacement and a next-line prefetcher (the error sources the
// paper attributes the model-vs-measurement gap to).
func measuredConfig(opt options) cachesim.Config {
	return cachesim.Config{LineSize: opt.line, Levels: []cachesim.LevelConfig{
		{Name: "L1", SizeBytes: opt.l1, Ways: 8, Policy: cachesim.PLRU, NextLinePrefetch: true},
		{Name: "L2", SizeBytes: opt.l2, Ways: 16, Policy: cachesim.PLRU},
	}}
}

func analyze(prog *scop.Program, cfg core.Config, parallelism int) (*core.Result, error) {
	opts := core.DefaultOptions()
	opts.TraceFallback = false
	opts.Parallelism = parallelism
	return core.Analyze(prog, cfg, opts)
}

// fig1: execution time of the model vs trace-driven simulation over
// increasing problem sizes for gemm and cholesky.
func fig1(opt options) {
	t := report.NewTable("Figure 1: model vs simulation scaling",
		"kernel", "size", "accesses", "model [s]", "simulation [s]", "sim/model")
	for _, name := range []string{"gemm", "cholesky"} {
		k, _ := polybench.ByName(name)
		for _, sz := range []polybench.Size{polybench.Mini, polybench.Small, polybench.Medium, opt.size} {
			prog := k.Build(sz)
			start := time.Now()
			res, err := analyze(prog, modelConfig(opt), opt.par)
			if err != nil {
				log.Printf("%s/%s: model failed: %v", name, sz, err)
				continue
			}
			modelTime := time.Since(start).Seconds()

			layout := scop.NewLayout(prog, scop.LayoutNatural, opt.line)
			cp, err := scop.Compile(prog, layout)
			if err != nil {
				log.Fatal(err)
			}
			simStart := time.Now()
			_ = reusedist.ProfileProgram(cp, opt.line)
			simTime := time.Since(simStart).Seconds()
			t.AddRow(name, sz.String(), res.TotalAccesses, modelTime, simTime, simTime/modelTime)
		}
	}
	emit(opt, t)
}

// fig9: model prediction vs the detailed simulation stand-in for hardware
// measurements, per kernel and cache level.
func fig9(opt options) {
	t := report.NewTable("Figure 9: model accuracy vs measured (detailed simulation stand-in)",
		"kernel", "accesses", "L1 model", "L1 measured", "L1 err%", "L2 model", "L2 measured", "L2 err%")
	var errsL1, errsL2 []float64
	for _, k := range opt.kernels {
		prog := k.Build(opt.size)
		res, err := analyze(prog, modelConfig(opt), opt.par)
		if err != nil {
			log.Printf("%s: model failed: %v", k.Name, err)
			continue
		}
		sim, err := core.DetailedSimulation(prog, measuredConfig(opt))
		if err != nil {
			log.Fatal(err)
		}
		e1 := 100 * float64(abs64(res.Levels[0].TotalMisses-sim.Levels[0].Misses)) / float64(res.TotalAccesses)
		e2 := 100 * float64(abs64(res.Levels[1].TotalMisses-sim.Levels[1].Misses)) / float64(res.TotalAccesses)
		errsL1 = append(errsL1, e1)
		errsL2 = append(errsL2, e2)
		t.AddRow(k.Name, res.TotalAccesses,
			res.Levels[0].TotalMisses, sim.Levels[0].Misses, e1,
			res.Levels[1].TotalMisses, sim.Levels[1].Misses, e2)
	}
	t.AddRow("geomean", "", "", "", report.GeoMean(errsL1), "", "", report.GeoMean(errsL2))
	emit(opt, t)
}

// fig10: simulation (fully associative and 8-way LRU) vs the same detailed
// reference, mirroring the Dinero IV comparison.
func fig10(opt options) {
	t := report.NewTable("Figure 10: simulated (Dinero stand-in) vs measured",
		"kernel", "L1 full-assoc", "L1 8-way", "L1 measured", "full err%", "8-way err%")
	for _, k := range opt.kernels {
		prog := k.Build(opt.size)
		layout := scop.NewLayout(prog, scop.LayoutNatural, opt.line)
		cp, err := scop.Compile(prog, layout)
		if err != nil {
			log.Fatal(err)
		}
		full, err := cachesim.Simulate(cp, cachesim.Config{LineSize: opt.line, Levels: []cachesim.LevelConfig{
			{Name: "L1", SizeBytes: opt.l1, Ways: 0, Policy: cachesim.LRU},
		}})
		if err != nil {
			log.Fatal(err)
		}
		assoc, err := cachesim.Simulate(cp, cachesim.Config{LineSize: opt.line, Levels: []cachesim.LevelConfig{
			{Name: "L1", SizeBytes: opt.l1, Ways: 8, Policy: cachesim.LRU},
		}})
		if err != nil {
			log.Fatal(err)
		}
		measured, err := cachesim.Simulate(cp, measuredConfig(opt))
		if err != nil {
			log.Fatal(err)
		}
		total := float64(full.TotalAccesses)
		t.AddRow(k.Name, full.Levels[0].Misses, assoc.Levels[0].Misses, measured.Levels[0].Misses,
			100*float64(abs64(full.Levels[0].Misses-measured.Levels[0].Misses))/total,
			100*float64(abs64(assoc.Levels[0].Misses-measured.Levels[0].Misses))/total)
	}
	emit(opt, t)
}

// fig11: model execution time split into stack distance computation and
// capacity miss counting, plus the number of counted pieces.
func fig11(opt options) {
	t := report.NewTable("Figure 11: model execution time split",
		"kernel", "stack distances [s]", "capacity misses [s]", "total [s]", "#pieces", "affine", "non-affine")
	for _, k := range opt.kernels {
		prog := k.Build(opt.size)
		res, err := analyze(prog, modelConfig(opt), opt.par)
		if err != nil {
			log.Printf("%s: model failed: %v", k.Name, err)
			continue
		}
		t.AddRow(k.Name, res.Stats.StackDistanceTime.Seconds(), res.Stats.CapacityTime.Seconds(),
			res.Stats.TotalTime.Seconds(), res.Stats.CountedPieces, res.Stats.AffinePieces, res.Stats.NonAffinePieces)
	}
	emit(opt, t)
}

// fig12: model execution times for MEDIUM, LARGE, and EXTRALARGE problem
// sizes (the -size flag selects the largest size to include).
func fig12(opt options) {
	t := report.NewTable("Figure 12: model execution time per problem size",
		"kernel", "size", "accesses", "total [s]", "#pieces")
	sizes := []polybench.Size{polybench.Medium, polybench.Large, polybench.ExtraLarge}
	for _, k := range opt.kernels {
		for _, sz := range sizes {
			if sz > opt.size {
				continue
			}
			prog := k.Build(sz)
			res, err := analyze(prog, modelConfig(opt), opt.par)
			if err != nil {
				log.Printf("%s/%s: model failed: %v", k.Name, sz, err)
				continue
			}
			t.AddRow(k.Name, sz.String(), res.TotalAccesses, res.Stats.TotalTime.Seconds(), res.Stats.CountedPieces)
		}
	}
	emit(opt, t)
}

// fig13: model execution time when modeling one, two, or three cache levels.
func fig13(opt options) {
	t := report.NewTable("Figure 13: execution time per number of cache levels",
		"kernel", "L1 only [s]", "L1+L2 [s]", "L1+L2+L3 [s]")
	for _, k := range opt.kernels {
		prog := k.Build(opt.size)
		times := make([]float64, 3)
		failed := false
		for i, sizes := range [][]int64{{opt.l1}, {opt.l1, opt.l2}, {opt.l1, opt.l2, opt.l3}} {
			res, err := analyze(prog, core.Config{LineSize: opt.line, CacheSizes: sizes}, opt.par)
			if err != nil {
				log.Printf("%s: model failed: %v", k.Name, err)
				failed = true
				break
			}
			times[i] = res.Stats.TotalTime.Seconds()
		}
		if failed {
			continue
		}
		t.AddRow(k.Name, times[0], times[1], times[2])
	}
	emit(opt, t)
}

// fig14: speedup of the floor elimination techniques and of partial
// enumeration, measured by disabling them.
func fig14(opt options) {
	t := report.NewTable("Figure 14: speedup of equalization, rasterization, partial enumeration",
		"kernel", "baseline [s]", "no equalization+rasterization [s]", "no rasterization [s]", "full enumeration [s]",
		"equalization x", "rasterization x", "partial enumeration x")
	var eqX, rasX, partX []float64
	for _, k := range opt.kernels {
		prog := k.Build(opt.size)
		run := func(o core.Options) (float64, error) {
			o.TraceFallback = false
			res, err := core.Analyze(prog, modelConfig(opt), o)
			if err != nil {
				return 0, err
			}
			return res.Stats.TotalTime.Seconds(), nil
		}
		base, err := run(core.Options{Equalization: true, Rasterization: true, PartialEnumeration: true})
		if err != nil {
			log.Printf("%s: %v", k.Name, err)
			continue
		}
		noFloor, err1 := run(core.Options{Equalization: false, Rasterization: false, PartialEnumeration: true})
		noRas, err2 := run(core.Options{Equalization: true, Rasterization: false, PartialEnumeration: true})
		noPart, err3 := run(core.Options{Equalization: true, Rasterization: true, PartialEnumeration: false})
		if err1 != nil || err2 != nil || err3 != nil {
			log.Printf("%s: ablation failed: %v %v %v", k.Name, err1, err2, err3)
			continue
		}
		eq := noFloor / base
		ras := noRas / base
		part := noPart / base
		eqX = append(eqX, eq)
		rasX = append(rasX, ras)
		partX = append(partX, part)
		t.AddRow(k.Name, base, noFloor, noRas, noPart, eq, ras, part)
	}
	t.AddRow("geomean", "", "", "", "", report.GeoMean(eqX), report.GeoMean(rasX), report.GeoMean(partX))
	emit(opt, t)
}

// fig15a: estimated comparison against a PolyCache-style per-set analytical
// model. PolyCache analyses every cache set separately; its cost therefore
// grows with the number of sets while the fully associative model runs once.
// Without an independent PolyCache implementation the comparison is
// estimated as model-time x number-of-sets (documented in DESIGN.md).
func fig15a(opt options) {
	t := report.NewTable("Figure 15a: estimated speedup over a per-set (PolyCache-style) model",
		"kernel", "model [s]", fmt.Sprintf("per-set estimate x%d sets [s]", opt.sets), "speedup")
	var speedups []float64
	for _, k := range opt.kernels {
		prog := k.Build(opt.size)
		res, err := analyze(prog, modelConfig(opt), opt.par)
		if err != nil {
			log.Printf("%s: model failed: %v", k.Name, err)
			continue
		}
		model := res.Stats.TotalTime.Seconds()
		perSet := model * float64(opt.sets)
		speedups = append(speedups, perSet/model)
		t.AddRow(k.Name, model, perSet, perSet/model)
	}
	t.AddRow("geomean", "", "", report.GeoMean(speedups))
	emit(opt, t)
}

// fig15b: speedup of the analytical model over trace-driven simulation.
func fig15b(opt options) {
	t := report.NewTable("Figure 15b: speedup over trace-driven simulation",
		"kernel", "accesses", "model [s]", "simulation [s]", "speedup")
	var speedups []float64
	for _, k := range opt.kernels {
		prog := k.Build(opt.size)
		res, err := analyze(prog, modelConfig(opt), opt.par)
		if err != nil {
			log.Printf("%s: model failed: %v", k.Name, err)
			continue
		}
		model := res.Stats.TotalTime.Seconds()
		layout := scop.NewLayout(prog, scop.LayoutNatural, opt.line)
		cp, err := scop.Compile(prog, layout)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if _, err := cachesim.Simulate(cp, measuredConfig(opt)); err != nil {
			log.Fatal(err)
		}
		sim := time.Since(start).Seconds()
		speedups = append(speedups, sim/model)
		t.AddRow(k.Name, res.TotalAccesses, model, sim, sim/model)
	}
	t.AddRow("geomean", "", "", "", report.GeoMean(speedups))
	emit(opt, t)
}

// fig16: model execution time for rectangularly tiled kernels (tile size 16).
func fig16(opt options) {
	t := report.NewTable("Figure 16: model execution time for tiled kernels (tile 16)",
		"kernel", "tiled", "stack distances [s]", "capacity misses [s]", "total [s]")
	for _, k := range opt.kernels {
		prog := k.Build(opt.size)
		tiled, ok := tiling.Tile(prog, 16)
		if !ok {
			t.AddRow(k.Name, "no rectangular tiling", "", "", "")
			continue
		}
		res, err := analyze(tiled, modelConfig(opt), opt.par)
		if err != nil {
			log.Printf("%s (tiled): model failed: %v", k.Name, err)
			t.AddRow(k.Name, "failed", "", "", "")
			continue
		}
		t.AddRow(k.Name, "yes", res.Stats.StackDistanceTime.Seconds(), res.Stats.CapacityTime.Seconds(), res.Stats.TotalTime.Seconds())
	}
	emit(opt, t)
}

// table1: number of non-affine stack distance polynomials by the number of
// dimensions that remain affine (countable symbolically).
func table1(opt options) {
	t := report.NewTable("Table 1: non-affine polynomials by number of affine dimensions",
		"kernel", "0d-affine", "1d-affine", "2d-affine", ">=3d-affine")
	for _, k := range opt.kernels {
		prog := k.Build(opt.size)
		res, err := analyze(prog, modelConfig(opt), opt.par)
		if err != nil {
			log.Printf("%s: model failed: %v", k.Name, err)
			continue
		}
		hist := res.Stats.NonAffineByAffineDims
		three := 0
		for d, n := range hist {
			if d >= 3 {
				three += n
			}
		}
		if res.Stats.NonAffinePieces == 0 {
			continue
		}
		t.AddRow(k.Name, hist[0], hist[1], hist[2], three)
	}
	emit(opt, t)
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
