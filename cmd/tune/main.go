// Command tune sweeps a design-space grid — PolyBench kernels × tile sizes
// × cache hierarchies — with the analytical cache model and reports the
// best configuration per kernel. The stack distance model of every tiled
// program variant is computed exactly once and shared across all
// hierarchies of the grid (the two-phase ComputeDistances/CountMisses API),
// which is what makes interactive sweeps feasible where a trace-driven
// simulator would take days.
//
// Usage:
//
//	tune -kernels gemm,atax -size SMALL -tiles 1,16,32 \
//	     -hierarchies "32768,1048576;16384,262144" -objective l1 -format text
//
// Hierarchies are separated by semicolons; the comma-separated values of
// one hierarchy are the per-level capacities in bytes, innermost first. A
// level spelled size/ways (e.g. 32768/8) models a set-associative cache of
// that associativity; a bare size stays fully associative.
// Output formats: text (aligned tables), csv, json.
//
// Tiled variants default to the fully symbolic, problem-size-independent
// pipeline (-tiled symbolic): the coalescing layer of the Presburger engine
// keeps the deep tiled nests tractable, so symbolic tiled sweeps finish in
// seconds per variant. Pass -tiled profile to build the tiled models from
// an exact trace profile instead — equally exact and still shared across
// all hierarchies, but with cost proportional to the trace length (it can
// win for small problem sizes or programs outside the symbolic fragment).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"haystack/internal/core"
	"haystack/internal/explore"
	"haystack/internal/polybench"
	"haystack/internal/report"
)

func main() {
	kernels := flag.String("kernels", "gemm", "comma separated PolyBench kernel names (see -list)")
	size := flag.String("size", "SMALL", "problem size: MINI, SMALL, MEDIUM, LARGE, EXTRALARGE")
	tiles := flag.String("tiles", "1,16,32", "comma separated tile sizes (1 = untiled)")
	line := flag.Int64("line", 64, "cache line size in bytes (shared by all hierarchies)")
	hierarchies := flag.String("hierarchies", "16384;32768,1048576;65536,4194304",
		"semicolon separated cache hierarchies, each a comma separated list of per-level capacities in bytes; a level spelled size/ways (e.g. 32768/8) is set-associative")
	objective := flag.String("objective", "l1", "ranking objective: l1, llc, or total")
	format := flag.String("format", "text", "output format: text, csv, or json")
	tiled := flag.String("tiled", "symbolic",
		"analysis of tiled variants: 'symbolic' (full symbolic pipeline, problem-size independent) or 'profile' (exact trace profile, cost grows with the trace length)")
	parallelism := flag.Int("parallelism", 0, "worker goroutines of the sweep's configuration pool (0 = all cores)")
	mode := flag.String("mode", "exact", "degradation ladder rung of every grid point: exact, bounded (certified interval bounds on degraded operations), sim (exact trace profiling for all variants)")
	budgetFlag := flag.Int64("budget", 0, "per-operation symbolic cost limit in cost units (0 = unlimited)")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline for the whole sweep (e.g. 2m; 0 = none)")
	stats := flag.Bool("stats", true, "print sweep statistics (text format only)")
	list := flag.Bool("list", false, "list available kernels and exit")
	flag.Parse()

	if *list {
		for _, k := range polybench.Kernels() {
			fmt.Printf("%-16s (%s)\n", k.Name, k.Category)
		}
		return
	}
	obj, err := explore.ParseObjective(*objective)
	if err != nil {
		log.Fatal(err)
	}
	sz, err := polybench.ParseSize(*size)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := buildGrid(*kernels, sz, *tiles, *line, *hierarchies)
	if err != nil {
		log.Fatal(err)
	}
	opts := explore.DefaultOptions()
	opts.Parallelism = *parallelism
	switch strings.ToLower(*tiled) {
	case "profile":
		opts.Tiled = explore.TiledProfile
	case "symbolic":
		opts.Tiled = explore.TiledSymbolic
	default:
		log.Fatalf("unknown -tiled strategy %q (want profile or symbolic)", *tiled)
	}
	m, err := core.ParseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	opts.Analysis.Mode = m
	opts.Analysis.Budget = *budgetFlag

	// The deadline covers the whole sweep, not each analysis: wrap the
	// context here instead of setting Analysis.Deadline.
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	res, err := explore.SweepContext(ctx, grid, opts)
	if err != nil {
		log.Fatalf("sweep failed: %v", err)
	}

	gridTable := gridTable(res, obj)
	bestTable := bestTable(res, obj)
	switch strings.ToLower(*format) {
	case "text":
		gridTable.Write(os.Stdout)
		fmt.Println()
		bestTable.Write(os.Stdout)
		if *stats {
			s := res.Stats
			fmt.Printf("\nsweep: %d kernels, %d variants, %d evaluations\n",
				s.Kernels, s.Variants, s.Evaluations)
			fmt.Printf("stack distances computed %d times (once per variant and line size), %v\n",
				s.DistanceComputations, s.DistancePhase.Round(1e6))
			fmt.Printf("miss counting across the grid: %v (%d passes)   total: %v\n",
				s.CountPhase.Round(1e6), s.CountingPasses, s.TotalTime.Round(1e6))
		}
	case "csv":
		gridTable.WriteCSV(os.Stdout)
		fmt.Println()
		bestTable.WriteCSV(os.Stdout)
	case "json":
		doc := struct {
			Grid  interface{} `json:"grid"`
			Best  interface{} `json:"best"`
			Stats struct {
				Kernels              int `json:"kernels"`
				Variants             int `json:"variants"`
				Evaluations          int `json:"evaluations"`
				DistanceComputations int `json:"distance_computations"`
				CountingPasses       int `json:"counting_passes"`
			} `json:"stats"`
		}{Grid: gridTable.JSONValue(), Best: bestTable.JSONValue()}
		doc.Stats.Kernels = res.Stats.Kernels
		doc.Stats.Variants = res.Stats.Variants
		doc.Stats.Evaluations = res.Stats.Evaluations
		doc.Stats.DistanceComputations = res.Stats.DistanceComputations
		doc.Stats.CountingPasses = res.Stats.CountingPasses
		if err := report.WriteJSON(os.Stdout, doc); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown format %q (want text, csv, or json)", *format)
	}
}

// buildGrid assembles the explore.Grid from the flag values.
func buildGrid(kernels string, sz polybench.Size, tiles string, line int64, hierarchies string) (explore.Grid, error) {
	var grid explore.Grid
	for _, name := range strings.Split(kernels, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		k, ok := polybench.ByName(name)
		if !ok {
			return grid, fmt.Errorf("unknown kernel %q (use -list to see the available kernels)", name)
		}
		grid.Kernels = append(grid.Kernels, explore.Kernel{Name: k.Name, Program: k.Build(sz)})
	}
	if len(grid.Kernels) == 0 {
		return grid, fmt.Errorf("no kernels selected")
	}
	for _, t := range strings.Split(tiles, ",") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		v, err := strconv.ParseInt(t, 10, 64)
		if err != nil {
			return grid, fmt.Errorf("invalid tile size %q: %v", t, err)
		}
		grid.TileSizes = append(grid.TileSizes, v)
	}
	for _, h := range strings.Split(hierarchies, ";") {
		h = strings.TrimSpace(h)
		if h == "" {
			continue
		}
		cfg := core.Config{LineSize: line}
		hasWays := false
		for _, c := range strings.Split(h, ",") {
			c = strings.TrimSpace(c)
			sizePart, waysPart, perLevel := strings.Cut(c, "/")
			v, err := strconv.ParseInt(strings.TrimSpace(sizePart), 10, 64)
			if err != nil {
				return grid, fmt.Errorf("invalid cache size %q in hierarchy %q: %v", c, h, err)
			}
			cfg.CacheSizes = append(cfg.CacheSizes, v)
			w := 0
			if perLevel {
				w, err = strconv.Atoi(strings.TrimSpace(waysPart))
				if err != nil {
					return grid, fmt.Errorf("invalid way count %q in hierarchy %q: %v", c, h, err)
				}
				hasWays = true
			}
			cfg.Ways = append(cfg.Ways, w)
		}
		// A hierarchy without any size/ways level keeps a nil Ways slice, so
		// the sweep is byte-identical to the pre-associativity grids.
		if !hasWays {
			cfg.Ways = nil
		}
		grid.Hierarchies = append(grid.Hierarchies, cfg)
	}
	return grid, nil
}

// gridTable renders every evaluated grid point as one row; per-level counts
// are slash separated, innermost level first.
func gridTable(res *explore.Result, obj explore.Objective) *report.Table {
	t := report.NewTable("design-space grid",
		"kernel", "tile", "caches", "accesses", "compulsory", "capacity", "misses", obj.String()+" score", "tier")
	for _, e := range res.Evaluations {
		var capacity, total []string
		for _, lvl := range e.Result.Levels {
			capacity = append(capacity, strconv.FormatInt(lvl.CapacityMisses, 10))
			total = append(total, strconv.FormatInt(lvl.TotalMisses, 10))
		}
		t.AddRow(e.Kernel, tileLabel(e), cachesLabel(e.Hierarchy),
			e.Result.TotalAccesses, e.Result.CompulsoryMisses,
			strings.Join(capacity, "/"), strings.Join(total, "/"),
			obj.Score(e), e.Result.Tier.String())
	}
	return t
}

// bestTable renders the winning configuration of every kernel. The last
// column normalizes the score by the access count: for the l1 and llc
// objectives that is the miss ratio of the scored level, for the total
// objective it is the average number of per-level misses each access causes
// (which can exceed one on multi-level hierarchies).
func bestTable(res *explore.Result, obj explore.Objective) *report.Table {
	t := report.NewTable("best configuration per kernel ("+obj.String()+")",
		"kernel", "tile", "caches", obj.String()+" score", "score/access")
	for _, b := range res.BestPerKernel(obj) {
		ratio := float64(b.Score) / float64(b.Evaluation.Result.TotalAccesses)
		t.AddRow(b.Kernel, tileLabel(b.Evaluation), cachesLabel(b.Evaluation.Hierarchy), b.Score, ratio)
	}
	return t
}

func tileLabel(e explore.Evaluation) string {
	if !e.Tiled {
		return "untiled"
	}
	return strconv.FormatInt(e.TileSize, 10)
}

func cachesLabel(cfg core.Config) string {
	parts := make([]string, len(cfg.CacheSizes))
	for i, s := range cfg.CacheSizes {
		parts[i] = strconv.FormatInt(s, 10)
		if w := cfg.WaysOf(i); w > 0 {
			parts[i] += "/" + strconv.Itoa(w)
		}
	}
	return strings.Join(parts, ":")
}
