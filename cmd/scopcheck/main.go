// Command scopcheck statically verifies static control programs with the
// Presburger-powered checker (internal/scopcheck) and prints the findings:
// array accesses proved in or out of bounds (with a concrete counterexample
// instance when out), schedule totality/injectivity, domain and context
// non-emptiness, and structural well-formedness.
//
// Usage:
//
//	scopcheck -kernel gemm -size MINI     # verify one concrete kernel
//	scopcheck -kernel gemm -parametric    # verify the parametric builder
//	scopcheck -all                        # verify every registered kernel
//
// The exit status is 0 when every checked program verifies without
// error-severity findings, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"haystack/internal/polybench"
	"haystack/internal/scop"
	"haystack/internal/scopcheck"
)

func main() {
	kernel := flag.String("kernel", "", "PolyBench kernel to verify (see haystack -list)")
	size := flag.String("size", "MINI", "problem size for concrete kernels: MINI, SMALL, MEDIUM, LARGE, EXTRALARGE")
	parametric := flag.Bool("parametric", false, "verify the parametric builder of the kernel instead of a concrete instantiation")
	all := flag.Bool("all", false, "verify every registered kernel (concrete at -size, plus all parametric builders)")
	quiet := flag.Bool("quiet", false, "print only programs with findings")
	flag.Parse()

	switch {
	case *all:
		os.Exit(checkAll(*size, *quiet))
	case *kernel != "":
		os.Exit(checkOne(*kernel, *size, *parametric, *quiet))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// checkOne verifies a single kernel and returns the process exit code.
func checkOne(name, size string, parametric, quiet bool) int {
	var prog *scop.Program
	if parametric {
		pk, ok := polybench.ParametricByName(name)
		if !ok {
			log.Fatalf("kernel %q has no parametric builder (available: %s)",
				name, strings.Join(polybench.ParametricNames(), ", "))
		}
		prog = pk.Build()
	} else {
		k, ok := polybench.ByName(name)
		if !ok {
			log.Fatalf("unknown kernel %q", name)
		}
		sz, err := polybench.ParseSize(size)
		if err != nil {
			log.Fatal(err)
		}
		prog = k.Build(sz)
	}
	if report(prog.Name, scopcheck.Check(prog), quiet) {
		return 1
	}
	return 0
}

// checkAll verifies every registered kernel and returns the process exit
// code.
func checkAll(size string, quiet bool) int {
	sz, err := polybench.ParseSize(size)
	if err != nil {
		log.Fatal(err)
	}
	failed := false
	for _, k := range polybench.Kernels() {
		if report(k.Name, scopcheck.Check(k.Build(sz)), quiet) {
			failed = true
		}
	}
	for _, pk := range polybench.ParametricKernels() {
		if report(pk.Name+" (parametric)", scopcheck.Check(pk.Build()), quiet) {
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// report prints the findings of one program and returns whether it had
// error-severity findings.
func report(name string, diags []scopcheck.Diagnostic, quiet bool) bool {
	if len(diags) == 0 {
		if !quiet {
			fmt.Printf("%s: ok\n", name)
		}
		return false
	}
	fmt.Printf("%s: %d findings\n", name, len(diags))
	for _, d := range diags {
		fmt.Printf("  %s\n", d)
	}
	return scopcheck.HasErrors(diags)
}
