// Command dinero replays the exact memory trace of a PolyBench kernel
// through the trace-driven cache simulator (the Dinero IV stand-in of this
// repository) and prints per-level hit and miss counts. Unlike the
// analytical model, its runtime is proportional to the number of memory
// accesses.
//
// Usage:
//
//	dinero -kernel gemm -size SMALL -line 64 -levels 32768:8:plru,1048576:16:lru
//
// Every level is described as size:ways:policy where ways 0 selects a fully
// associative cache and policy is lru or plru. Adding ":prefetch" enables a
// next-line prefetcher on that level.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"haystack/internal/cachesim"
	"haystack/internal/polybench"
	"haystack/internal/report"
	"haystack/internal/scop"
)

func main() {
	kernel := flag.String("kernel", "gemm", "PolyBench kernel name")
	size := flag.String("size", "SMALL", "problem size: MINI, SMALL, MEDIUM, LARGE, EXTRALARGE")
	line := flag.Int64("line", 64, "cache line size in bytes")
	levels := flag.String("levels", "32768:8:lru,1048576:16:lru", "cache levels as size:ways:policy[:prefetch]")
	padded := flag.Bool("padded", false, "pad array rows to the cache line size (the layout the model assumes)")
	flag.Parse()

	k, ok := polybench.ByName(*kernel)
	if !ok {
		log.Fatalf("unknown kernel %q", *kernel)
	}
	sz, err := polybench.ParseSize(*size)
	if err != nil {
		log.Fatal(err)
	}
	cfg := cachesim.Config{LineSize: *line}
	for i, spec := range strings.Split(*levels, ",") {
		lvl, err := parseLevel(fmt.Sprintf("L%d", i+1), spec)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Levels = append(cfg.Levels, lvl)
	}

	prog := k.Build(sz)
	layoutKind := scop.LayoutNatural
	if *padded {
		layoutKind = scop.LayoutPadded
	}
	layout := scop.NewLayout(prog, layoutKind, *line)
	cp, err := scop.Compile(prog, layout)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cachesim.Simulate(cp, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("kernel %s (%s), %d memory accesses\n", k.Name, sz, res.TotalAccesses)
	t := report.NewTable("simulated cache behaviour", "level", "accesses", "hits", "misses", "compulsory", "miss ratio")
	for _, lvl := range res.Levels {
		ratio := 0.0
		if lvl.Accesses > 0 {
			ratio = float64(lvl.Misses) / float64(lvl.Accesses)
		}
		t.AddRow(lvl.Name, lvl.Accesses, lvl.Hits, lvl.Misses, lvl.Compulsory, ratio)
	}
	t.Write(os.Stdout)
}

func parseLevel(name, spec string) (cachesim.LevelConfig, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 3 {
		return cachesim.LevelConfig{}, fmt.Errorf("level %q: want size:ways:policy", spec)
	}
	size, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return cachesim.LevelConfig{}, fmt.Errorf("level %q: bad size: %v", spec, err)
	}
	ways, err := strconv.Atoi(parts[1])
	if err != nil {
		return cachesim.LevelConfig{}, fmt.Errorf("level %q: bad ways: %v", spec, err)
	}
	lvl := cachesim.LevelConfig{Name: name, SizeBytes: size, Ways: ways}
	switch strings.ToLower(parts[2]) {
	case "lru":
		lvl.Policy = cachesim.LRU
	case "plru":
		lvl.Policy = cachesim.PLRU
	default:
		return cachesim.LevelConfig{}, fmt.Errorf("level %q: unknown policy %q", spec, parts[2])
	}
	if len(parts) > 3 && strings.EqualFold(parts[3], "prefetch") {
		lvl.NextLinePrefetch = true
	}
	return lvl, nil
}
