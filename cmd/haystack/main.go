// Command haystack analyzes a PolyBench kernel with the analytical cache
// model and prints the predicted compulsory and capacity misses per cache
// level, together with the model statistics (execution time split and number
// of counted pieces).
//
// Usage:
//
//	haystack -kernel gemm -size MEDIUM -line 64 -caches 32768,1048576
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"haystack/internal/core"
	"haystack/internal/polybench"
	"haystack/internal/report"
)

func main() {
	kernel := flag.String("kernel", "gemm", "PolyBench kernel name (see -list)")
	size := flag.String("size", "MEDIUM", "problem size: MINI, SMALL, MEDIUM, LARGE, EXTRALARGE")
	line := flag.Int64("line", 64, "cache line size in bytes")
	caches := flag.String("caches", "32768,1048576", "comma separated cache capacities in bytes")
	list := flag.Bool("list", false, "list available kernels and exit")
	noEqualization := flag.Bool("no-equalization", false, "disable the equalization floor elimination")
	noRasterization := flag.Bool("no-rasterization", false, "disable the rasterization floor elimination")
	noPartial := flag.Bool("no-partial-enumeration", false, "disable partial enumeration of non-affine pieces")
	parallelism := flag.Int("parallelism", 0, "worker goroutines for the analysis (stack distances and capacity miss counting; 0 = all cores)")
	stats := flag.Bool("stats", false, "print extended statistics (coalescing counters and basic-map counts of the distance phase)")
	flag.Parse()

	if *list {
		for _, k := range polybench.Kernels() {
			fmt.Printf("%-16s (%s)\n", k.Name, k.Category)
		}
		return
	}
	k, ok := polybench.ByName(*kernel)
	if !ok {
		log.Fatalf("unknown kernel %q (use -list to see the available kernels)", *kernel)
	}
	sz, err := polybench.ParseSize(*size)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{LineSize: *line}
	for _, c := range strings.Split(*caches, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(c), 10, 64)
		if err != nil {
			log.Fatalf("invalid cache size %q: %v", c, err)
		}
		cfg.CacheSizes = append(cfg.CacheSizes, v)
	}
	opts := core.DefaultOptions()
	opts.Equalization = !*noEqualization
	opts.Rasterization = !*noRasterization
	opts.PartialEnumeration = !*noPartial
	opts.Parallelism = *parallelism

	prog := k.Build(sz)
	res, err := core.Analyze(prog, cfg, opts)
	if err != nil {
		log.Fatalf("analysis failed: %v", err)
	}

	fmt.Printf("kernel %s (%s), %d memory accesses\n", k.Name, sz, res.TotalAccesses)
	if res.UsedTraceFallback {
		fmt.Printf("note: symbolic analysis fell back to trace profiling (%s)\n", res.FallbackReason)
	}
	t := report.NewTable("predicted cache behaviour", "cache", "bytes", "compulsory", "capacity", "misses", "miss ratio")
	for i, lvl := range res.Levels {
		ratio := float64(lvl.TotalMisses) / float64(res.TotalAccesses)
		t.AddRow(fmt.Sprintf("L%d", i+1), lvl.CacheBytes, res.CompulsoryMisses, lvl.CapacityMisses, lvl.TotalMisses, ratio)
	}
	t.Write(os.Stdout)

	fmt.Printf("\nstack distances: %v   capacity counting: %v   total: %v\n",
		res.Stats.StackDistanceTime.Round(1e6), res.Stats.CapacityTime.Round(1e6), res.Stats.TotalTime.Round(1e6))
	fmt.Printf("pieces: %d distance, %d counted (%d affine, %d non-affine)\n",
		res.Stats.DistancePieces, res.Stats.CountedPieces, res.Stats.AffinePieces, res.Stats.NonAffinePieces)
	if res.Stats.CapacityWorkers > 0 {
		var busy time.Duration
		for _, t := range res.Stats.CapacityWorkerTime {
			busy += t
		}
		fmt.Printf("capacity counting workers: %d, total busy time %v\n",
			res.Stats.CapacityWorkers, busy.Round(1e6))
	}
	if *stats {
		s := res.Stats
		fmt.Printf("coalescing: peak %d basic maps at the composition frontiers (%d entering -> %d leaving)\n",
			s.PeakBasicMaps, s.BasicMapsBeforeCoalesce, s.BasicMapsAfterCoalesce)
		fmt.Printf("coalescing hits: %d dedup, %d subsumed, %d adjacent/extension merges, %d redundant constraints dropped\n",
			s.CoalesceDedup, s.CoalesceSubsumed, s.CoalesceAdjacent, s.CoalesceRedundantCons)
	}
}
