// Command haystack analyzes a PolyBench kernel with the analytical cache
// model and prints the predicted compulsory and capacity misses per cache
// level, together with the model statistics (execution time split and number
// of counted pieces).
//
// Usage:
//
//	haystack -kernel gemm -size MEDIUM -line 64 -caches 32768,1048576
//
// With -params the kernel is analyzed parametrically (one symbolic analysis
// for all problem sizes, core.ComputeParametricModel) and evaluated at the
// given parameter values:
//
//	haystack -kernel gemm -params NI=1000,NJ=1100,NK=1200
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"haystack/internal/core"
	"haystack/internal/polybench"
	"haystack/internal/report"
	"haystack/internal/scop"
	"haystack/internal/scopcheck"
)

func main() {
	kernel := flag.String("kernel", "gemm", "PolyBench kernel name (see -list)")
	size := flag.String("size", "MEDIUM", "problem size: MINI, SMALL, MEDIUM, LARGE, EXTRALARGE")
	params := flag.String("params", "", "comma separated parameter bindings (e.g. NI=1000,NJ=1100,NK=1200); selects the parametric model, ignoring -size")
	line := flag.Int64("line", 64, "cache line size in bytes")
	caches := flag.String("caches", "32768,1048576", "comma separated cache capacities in bytes")
	ways := flag.String("ways", "", "comma separated associativity per cache level (0 = fully associative); e.g. 8,16 models a set-associative hierarchy")
	list := flag.Bool("list", false, "list available kernels and exit")
	noEqualization := flag.Bool("no-equalization", false, "disable the equalization floor elimination")
	noRasterization := flag.Bool("no-rasterization", false, "disable the rasterization floor elimination")
	noPartial := flag.Bool("no-partial-enumeration", false, "disable partial enumeration of non-affine pieces")
	parallelism := flag.Int("parallelism", 0, "worker goroutines for the analysis (stack distances and capacity miss counting; 0 = all cores)")
	mode := flag.String("mode", "exact", "degradation ladder rung: exact (fail or trace-fallback on degraded operations), bounded (answer with certified interval bounds), sim (exact trace profiling, no symbolic analysis)")
	budgetFlag := flag.Int64("budget", 0, "per-operation symbolic cost limit in cost units (0 = unlimited); an operation over budget fails in exact mode and degrades to certified bounds in bounded mode")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline for the whole analysis (e.g. 30s; 0 = none)")
	stats := flag.Bool("stats", false, "print extended statistics (coalescing counters, basic-map counts, budget use, and degradation provenance)")
	check := flag.Bool("check", false, "statically verify the program (scopcheck) and print the findings before the analysis; warnings are reported, errors abort")
	flag.Parse()

	if *list {
		parametric := map[string]bool{}
		for _, name := range polybench.ParametricNames() {
			parametric[name] = true
		}
		for _, k := range polybench.Kernels() {
			suffix := ""
			if parametric[k.Name] {
				suffix = ", parametric"
			}
			fmt.Printf("%-16s (%s%s)\n", k.Name, k.Category, suffix)
		}
		return
	}
	cfg := core.Config{LineSize: *line}
	for _, c := range strings.Split(*caches, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(c), 10, 64)
		if err != nil {
			log.Fatalf("invalid cache size %q: %v", c, err)
		}
		cfg.CacheSizes = append(cfg.CacheSizes, v)
	}
	if *ways != "" {
		for _, w := range strings.Split(*ways, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(w))
			if err != nil {
				log.Fatalf("invalid way count %q: %v", w, err)
			}
			cfg.Ways = append(cfg.Ways, v)
		}
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Equalization = !*noEqualization
	opts.Rasterization = !*noRasterization
	opts.PartialEnumeration = !*noPartial
	opts.Parallelism = *parallelism
	m, err := core.ParseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	opts.Mode = m
	opts.Budget = *budgetFlag
	opts.Deadline = *deadline

	var res *core.Result
	var caption string
	if *params != "" {
		if opts.Mode == core.ModeSim {
			log.Fatal("-mode sim needs a concrete -size: the parametric model has no trace to profile")
		}
		pk, ok := polybench.ParametricByName(*kernel)
		if !ok {
			log.Fatalf("kernel %q has no parametric variant (available: %s)", *kernel, strings.Join(polybench.ParametricNames(), ", "))
		}
		bindings, err := parseBindings(*params)
		if err != nil {
			log.Fatal(err)
		}
		prog := pk.Build()
		// Validate the bindings before the expensive symbolic analysis: a
		// typo in -params should fail in microseconds, not after minutes of
		// model construction.
		if err := prog.CheckBindings(bindings); err != nil {
			log.Fatal(err)
		}
		if *check {
			runCheck(prog)
			opts.SkipVerify = true // already verified, skip the silent pre-flight
		}
		pm, err := core.ComputeParametricModel(prog, cfg.LineSize, opts)
		if err != nil {
			log.Fatalf("parametric analysis failed: %v", err)
		}
		res, err = pm.Eval(cfg, bindings)
		if err != nil {
			log.Fatalf("evaluating the parametric model: %v", err)
		}
		caption = fmt.Sprintf("kernel %s at %s (parametric model: %d pieces, %d parametric, %d residual; built in %v, reusable for any size)",
			pk.Name, *params, pm.DistancePieces(), pm.ParametricPieces(), pm.ResidualPieces(), pm.ComputeTime().Round(1e6))
	} else {
		k, ok := polybench.ByName(*kernel)
		if !ok {
			log.Fatalf("unknown kernel %q (use -list to see the available kernels)", *kernel)
		}
		sz, err := polybench.ParseSize(*size)
		if err != nil {
			log.Fatal(err)
		}
		prog := k.Build(sz)
		if *check {
			runCheck(prog)
			opts.SkipVerify = true // already verified, skip the silent pre-flight
		}
		res, err = core.Analyze(prog, cfg, opts)
		if err != nil {
			log.Fatalf("analysis failed: %v", err)
		}
		caption = fmt.Sprintf("kernel %s (%s)", k.Name, sz)
	}

	fmt.Printf("%s, %d memory accesses\n", caption, res.TotalAccesses)
	if res.UsedTraceFallback {
		fmt.Printf("note: symbolic analysis fell back to trace profiling (%s)\n", res.FallbackReason)
	}
	if res.Tier == core.TierBounded {
		fmt.Printf("note: bounded tier — point values are certified upper bounds (%s)\n", res.FallbackReason)
	}
	t := report.NewTable("predicted cache behaviour", "cache", "bytes", "ways", "compulsory", "capacity", "misses", "miss ratio")
	for i, lvl := range res.Levels {
		ratio := float64(lvl.TotalMisses) / float64(res.TotalAccesses)
		waysLabel := "full"
		if w := cfg.WaysOf(i); w > 0 {
			waysLabel = strconv.Itoa(w)
		}
		t.AddRow(fmt.Sprintf("L%d", i+1), lvl.CacheBytes, waysLabel, res.CompulsoryMisses, lvl.CapacityMisses, lvl.TotalMisses, ratio)
	}
	t.Write(os.Stdout)

	for _, sa := range res.Stats.SetAssoc {
		total := 0
		for _, p := range sa.SetPieces {
			total += p
		}
		fmt.Printf("L%d set-associative: %d sets of %d ways, %d per-set distance pieces\n",
			sa.Level+1, sa.Sets, sa.Ways, total)
	}

	if res.Tier == core.TierBounded {
		fmt.Printf("\ncertified bounds: compulsory in %v\n", res.CompulsoryBounds)
		for i, lvl := range res.Levels {
			fmt.Printf("L%d: capacity misses in %v, total misses in %v (width %d)\n",
				i+1, lvl.CapacityMissBounds, lvl.TotalMissBounds, lvl.TotalMissBounds.Width())
		}
	}

	fmt.Printf("\nstack distances: %v   capacity counting: %v   total: %v\n",
		res.Stats.StackDistanceTime.Round(1e6), res.Stats.CapacityTime.Round(1e6), res.Stats.TotalTime.Round(1e6))
	fmt.Printf("pieces: %d distance, %d counted (%d affine, %d non-affine)\n",
		res.Stats.DistancePieces, res.Stats.CountedPieces, res.Stats.AffinePieces, res.Stats.NonAffinePieces)
	if res.Stats.CapacityWorkers > 0 {
		var busy time.Duration
		for _, t := range res.Stats.CapacityWorkerTime {
			busy += t
		}
		fmt.Printf("capacity counting workers: %d, total busy time %v\n",
			res.Stats.CapacityWorkers, busy.Round(1e6))
	}
	if *stats {
		s := res.Stats
		fmt.Printf("coalescing: peak %d basic maps at the composition frontiers (%d entering -> %d leaving)\n",
			s.PeakBasicMaps, s.BasicMapsBeforeCoalesce, s.BasicMapsAfterCoalesce)
		fmt.Printf("coalescing hits: %d dedup, %d subsumed, %d adjacent/extension merges, %d redundant constraints dropped\n",
			s.CoalesceDedup, s.CoalesceSubsumed, s.CoalesceAdjacent, s.CoalesceRedundantCons)
		fmt.Printf("scheduling: %d steals, %d splits   coefficient arena: %d hits, %d misses\n",
			s.Steals, s.Splits, s.ArenaHits, s.ArenaMisses)
		fmt.Printf("tier: %s   budget charged: %d cost units (per-operation limit %d)\n", res.Tier, s.BudgetUsed, opts.Budget)
		if len(s.BoundWidth) > 0 {
			fmt.Printf("bound widths per level: %v (0 = exact)\n", s.BoundWidth)
		}
		if res.FallbackReason != "" {
			fmt.Printf("degradation provenance: %s\n", res.FallbackReason)
		}
	}
}

// runCheck statically verifies the program, prints every finding, and exits
// non-zero when the verifier found errors.
func runCheck(prog *scop.Program) {
	diags := scopcheck.Check(prog)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if scopcheck.HasErrors(diags) {
		log.Fatalf("static verification of %s failed (%d findings)", prog.Name, len(diags))
	}
	fmt.Printf("static verification of %s passed (%d warnings)\n", prog.Name, len(diags))
}

// parseBindings parses "NAME=value,NAME=value" parameter bindings.
func parseBindings(s string) (map[string]int64, error) {
	out := map[string]int64{}
	for _, part := range strings.Split(s, ",") {
		name, value, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("invalid parameter binding %q (want NAME=value)", part)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(value), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid value in parameter binding %q: %v", part, err)
		}
		out[strings.TrimSpace(name)] = v
	}
	return out, nil
}
