package haystack_test

import (
	"fmt"

	"haystack"
)

// paperExample builds the worked example of the paper (Figure 2):
//
//	for (i = 0; i < 4; i++) M[i] = i;
//	for (j = 0; j < 4; j++) sum += M[3-j];
func paperExample() *haystack.Program {
	p := haystack.NewProgram("example")
	m := p.NewArray("M", haystack.ElemFloat64, 4)
	i, j := haystack.V("i"), haystack.V("j")
	p.Add(
		haystack.For(i, haystack.C(0), haystack.C(4),
			haystack.Stmt("S0", haystack.Write(m, haystack.X(i)))),
		haystack.For(j, haystack.C(0), haystack.C(4),
			haystack.Stmt("S1", haystack.Read(m, haystack.C(3).Minus(haystack.X(j))))),
	)
	return p
}

// ExampleAnalyze runs the single-shot analysis on the paper's worked
// example: a toy cache with two 8-byte lines, for which section 3 of the
// paper derives 4 compulsory and 2 capacity misses by hand.
func ExampleAnalyze() {
	p := paperExample()
	cfg := haystack.Config{LineSize: 8, CacheSizes: []int64{16}}
	res, err := haystack.Analyze(p, cfg, haystack.DefaultOptions())
	if err != nil {
		fmt.Println("analysis failed:", err)
		return
	}
	fmt.Printf("%d accesses, %d compulsory misses\n", res.TotalAccesses, res.CompulsoryMisses)
	fmt.Printf("%d B cache: %d capacity misses, %d total\n",
		cfg.CacheSizes[0], res.Levels[0].CapacityMisses, res.Levels[0].TotalMisses)
	// Output:
	// 8 accesses, 4 compulsory misses
	// 16 B cache: 2 capacity misses, 6 total
}

// ExampleComputeDistances demonstrates the two-phase API that design-space
// exploration builds on: the stack distances are computed once and
// classified against several cache hierarchies, each CountMisses call being
// bit-identical to a standalone Analyze with that hierarchy.
func ExampleComputeDistances() {
	dm, err := haystack.ComputeDistances(paperExample(), 8, haystack.DefaultOptions())
	if err != nil {
		fmt.Println("distance phase failed:", err)
		return
	}
	for _, size := range []int64{16, 32} {
		res, err := dm.CountMisses(haystack.Config{LineSize: 8, CacheSizes: []int64{size}})
		if err != nil {
			fmt.Println("counting failed:", err)
			return
		}
		fmt.Printf("%2d B cache: %d capacity misses\n", size, res.Levels[0].CapacityMisses)
	}
	// Output:
	// 16 B cache: 2 capacity misses
	// 32 B cache: 0 capacity misses
}
